// Matrixabft: when the application space is matrix-structured, algorithm-
// based fault tolerance composes with the low-level techniques (paper Sec
// 3.2). This example protects the inner-product kernel three ways —
// ABFT correction alone, hardware-only, ABFT + LEAP-DICE + parity + flush —
// and shows how the algorithm layer absorbs part of the flip-flop
// vulnerability, shrinking the selective-hardening set.
package main

import (
	"fmt"
	"log"
	"math"

	"clear"
)

func main() {
	eng := clear.NewEngine(clear.InO)
	eng.SamplesBase, eng.SamplesTech = 2, 2
	b := clear.BenchmarkByName("inner_product")

	rows := []struct {
		name  string
		combo clear.Combo
	}{
		{"ABFT correction alone", clear.Combo{Variant: clear.Variant{ABFT: clear.ABFTCorr}}},
		{"LEAP-DICE + parity + flush", clear.Combo{DICE: true, Parity: true, Recovery: clear.RecFlush}},
		{"ABFT + LEAP-DICE + parity + flush", clear.Combo{DICE: true, Parity: true,
			Recovery: clear.RecFlush, Variant: clear.Variant{ABFT: clear.ABFTCorr}}},
	}
	fmt.Println("inner_product at a 50x SDC improvement target (InO core):")
	for _, r := range rows {
		out, err := eng.EvalCombo(b, r.combo, clear.SDC, 50)
		if err != nil {
			log.Fatal(err)
		}
		met := ""
		if !out.TargetMet {
			met = "  (target NOT met: algorithm layer alone cannot reach 50x)"
		}
		fmt.Printf("  %-36s SDC %-8s energy %5.2f%%  protected FFs %4d%s\n",
			r.name, impStr(out.SDCImp), 100*out.Cost.Energy(), out.Protected, met)
	}
	fmt.Println("\nABFT absorbs part of the vulnerability in the algorithm, so the")
	fmt.Println("selective-hardening pass on top needs fewer flip-flops (compare the")
	fmt.Println("protected-FF counts). On these miniature kernels the checksum passes")
	fmt.Println("cost a larger runtime fraction than on the paper's full-size")
	fmt.Println("matrices, where the same composition also wins on total energy.")
}

func impStr(v float64) string {
	if math.IsInf(v, 1) {
		return "max"
	}
	return fmt.Sprintf("%.1fx", v)
}
