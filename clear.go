// Package clear is CLEAR — Cross-Layer Exploration for Architecting
// Resilience — a framework for exploring combinations of soft-error
// resilience techniques across the system stack (circuit, logic,
// architecture, software, algorithm) and finding minimum-cost designs that
// meet SDC/DUE improvement targets, after Cheng et al., DAC 2016.
//
// The package is a façade over the internal implementation:
//
//   - two cycle-level processor cores with flip-flop-resolution state
//     (a 7-stage in-order core and a 2-wide out-of-order core);
//   - 18 application benchmarks (11 SPECINT2000-like, 7 DARPA-PERFECT-like)
//     for a custom 32-bit RISC ISA;
//   - a fault-injection engine classifying Vanished/OMM/UT/Hang/ED outcomes;
//   - the resilience library: LEAP-DICE/LHL/LEAP-ctrl/EDS hardened cells,
//     XOR-tree logic parity, DFC, a DIVA-style monitor core, software
//     assertions, CFCSS, EDDI, ABFT correction/detection, and four hardware
//     recovery mechanisms (IR, EIR, flush, RoB);
//   - layout and synthesis cost models;
//   - the cross-layer DSE engine (586 combinations, Heuristic 1 selective
//     insertion, γ-corrected Eq. 1 improvements);
//   - the experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// Quick start:
//
//	eng := clear.NewEngine(clear.InO)
//	b := clear.BenchmarkByName("gzip")
//	combo := clear.Combo{DICE: true, Parity: true, Recovery: clear.RecFlush}
//	out, err := eng.EvalCombo(b, combo, clear.SDC, 50)
//	// out.Cost.Energy() is the energy overhead of a 50x SDC improvement
package clear

import (
	"fmt"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/experiments"
	"clear/internal/inject"
	"clear/internal/power"
	"clear/internal/prog"
	"clear/internal/recovery"
	"clear/internal/sim"
	"clear/internal/technique"
)

// Core kinds.
type CoreKind = inject.CoreKind

// The two processor designs.
const (
	InO = inject.InO
	OoO = inject.OoO
)

// Engine is the cross-layer exploration engine for one core design.
type Engine = core.Engine

// NewEngine returns an exploration engine with default campaign sampling.
func NewEngine(kind CoreKind) *Engine { return core.NewEngine(kind) }

// Combo is a cross-layer combination of resilience techniques.
type Combo = core.Combo

// Variant selects the high-layer (algorithm/software/architecture) parts of
// a combination.
type Variant = core.Variant

// Plan is a concrete per-flip-flop protection assignment.
type Plan = core.Plan

// Outcome is an evaluated combination: improvements, γ, and cost.
type Outcome = core.Outcome

// Metric selects SDC or DUE improvement targeting.
type Metric = core.Metric

// Improvement metrics.
const (
	SDC = core.SDC
	DUE = core.DUE
)

// Software technique selectors for Variant.SW.
const (
	SWAssertions = core.SWAssertions
	SWCFCSS      = core.SWCFCSS
	SWEDDI       = core.SWEDDI
)

// Algorithm-layer modes for Variant.ABFT.
const (
	ABFTNone = core.ABFTNone
	ABFTCorr = core.ABFTCorr
	ABFTDet  = core.ABFTDet
)

// Recovery kinds.
type RecoveryKind = recovery.Kind

// Hardware recovery mechanisms.
const (
	RecNone  = recovery.None
	RecFlush = recovery.Flush
	RecRoB   = recovery.RoB
	RecIR    = recovery.IR
	RecEIR   = recovery.EIR
)

// Benchmark is one of the 18 application benchmarks.
type Benchmark = bench.Benchmark

// Benchmarks returns the full benchmark suite (the in-order core's 18).
func Benchmarks() []*Benchmark { return bench.All() }

// BenchmarkByName returns a benchmark by name, or nil.
func BenchmarkByName(name string) *Benchmark { return bench.ByName(name) }

// Program is an executable CRV32 program image.
type Program = prog.Program

// Core is a cycle-level processor simulator with flip-flop-level state.
type Core = sim.Core

// NewCore instantiates a fresh core of the given kind bound to p.
func NewCore(kind CoreKind, p *Program) Core { return inject.NewCore(kind, p) }

// InjectionOutcome classifies a fault-injection run.
type InjectionOutcome = inject.Outcome

// Injection outcome classes (paper Sec 2.1).
const (
	Vanished = inject.Vanished
	OMM      = inject.OMM
	UT       = inject.UT
	Hang     = inject.Hang
	ED       = inject.ED
)

// InjectOne flips one flip-flop bit at the given cycle of a fresh run of p
// on a core of the given kind and classifies the outcome. nomCycles is the
// fault-free execution time (used for the 2x hang cutoff).
func InjectOne(kind CoreKind, p *Program, bit, cycle, nomCycles int) InjectionOutcome {
	c := inject.NewCore(kind, p)
	out, _ := inject.RunOne(c, p, bit, cycle, nomCycles, nil)
	return out
}

// Enumerate returns the valid cross-layer combinations of a core
// (417 for InO, 169 for OoO; 586 total — paper Table 18).
func Enumerate(kind CoreKind) []Combo { return core.Enumerate(kind) }

// EnumerateWith returns the valid combinations of a core restricted to the
// techniques a filter allows (nil filter = all).
func EnumerateWith(kind CoreKind, f *TechniqueFilter) []Combo {
	return core.EnumerateWith(kind, f)
}

// ComboFor builds the combination activating the named registered
// techniques under the given recovery, in canonical order regardless of the
// argument order.
func ComboFor(names []string, rec RecoveryKind) (Combo, error) {
	return core.ComboFor(names, rec)
}

// Technique is one pluggable resilience technique: identity (name, stack
// layer, applicable cores) plus hardware cost. Optional capability
// interfaces (GammaContributor, ProgramTransformer, CommitHooker,
// TechniqueRecoveryCompat, FFProtector, CampaignTagger) extend it; a
// registered technique participates in enumeration, evaluation, cost
// tables, and the sweep CLI without any engine changes.
type Technique = technique.Technique

// TechniqueInfo is an embeddable identity block for implementing Technique
// (name, layer, core restriction, optional display note, zero base cost).
type TechniqueInfo = technique.Info

// TechniqueLayer is the system-stack layer of a technique.
type TechniqueLayer = technique.Layer

// Stack layers for registering techniques.
const (
	LayerCircuit      = technique.Circuit
	LayerLogic        = technique.Logic
	LayerArchitecture = technique.Architecture
	LayerSoftware     = technique.Software
	LayerAlgorithm    = technique.Algorithm
	LayerRecovery     = technique.Recovery
)

// Optional Technique capability interfaces.
type (
	// GammaContributor contributes γ flip-flop/execution overheads.
	GammaContributor = technique.GammaContributor
	// ProgramTransformer rewrites the benchmark program.
	ProgramTransformer = technique.Transformer
	// CommitHooker attaches a commit-stream checker to injection runs.
	CommitHooker = technique.Hooker
	// TechniqueRecoveryCompat declares which recovery mechanisms the
	// technique's detections can drive (enumeration constraints).
	TechniqueRecoveryCompat = technique.RecoveryCompat
	// FFProtector participates in Heuristic 1 per-flip-flop insertion.
	FFProtector = technique.FFProtector
	// CampaignTagger contributes a frozen campaign cache-tag fragment.
	CampaignTagger = technique.Tagger
)

// TechniqueEnv is the context a program transform runs in.
type TechniqueEnv = technique.Env

// TechniqueOptions carries the software-technique knobs of a variant.
type TechniqueOptions = technique.Options

// CostModel selects the hardware cost model (returned by PowerInO/PowerOoO
// internally; Technique.Cost receives it).
type CostModel = power.Model

// Cost is an area/power/execution-time overhead triple.
type Cost = power.Cost

// CommitHook observes retiring instructions during an injection run;
// returning true signals a detection.
type CommitHook = sim.CommitHook

// CommitEvent is one retired instruction as seen by a CommitHook.
type CommitEvent = sim.CommitEvent

// RegisterTechnique adds a technique to the default registry. Registration
// order defines the canonical ordering used by combination names,
// enumeration, and cost tables; built-ins register first.
func RegisterTechnique(t Technique) error { return technique.Default().Register(t) }

// UnregisterTechnique removes a registered technique by name, reporting
// whether it was present. Built-ins can be removed too — intended for
// tests and experiments.
func UnregisterTechnique(name string) bool { return technique.Default().Unregister(name) }

// Techniques lists the registered non-recovery techniques in canonical
// order.
func Techniques() []Technique { return technique.Default().Techniques() }

// LookupTechnique finds a registered technique by name.
func LookupTechnique(name string) (Technique, error) { return technique.Default().Lookup(name) }

// TechniqueFilter restricts enumeration to a subset of the registered
// techniques (the sweep CLI's -techniques flag).
type TechniqueFilter = technique.Filter

// ParseTechniqueFilter parses a comma-separated technique selection
// ("LEAP-DICE,Parity" includes; "-EDS" excludes; empty = nil = all)
// against the default registry.
func ParseTechniqueFilter(spec string) (*TechniqueFilter, error) {
	return technique.ParseFilter(spec, technique.Default())
}

// Experiment regenerates one table or figure of the paper.
type Experiment = experiments.Experiment

// Experiments lists every reproducible table and figure.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment regenerates the identified table/figure ("table19", "fig9",
// ...) using default engines and returns its rendered text.
func RunExperiment(id string) (string, error) {
	e, ok := experiments.Get(id)
	if !ok {
		return "", fmt.Errorf("clear: unknown experiment %q", id)
	}
	return e.Run(experiments.NewCtx())
}
