// Package clear is CLEAR — Cross-Layer Exploration for Architecting
// Resilience — a framework for exploring combinations of soft-error
// resilience techniques across the system stack (circuit, logic,
// architecture, software, algorithm) and finding minimum-cost designs that
// meet SDC/DUE improvement targets, after Cheng et al., DAC 2016.
//
// The package is a façade over the internal implementation:
//
//   - two cycle-level processor cores with flip-flop-resolution state
//     (a 7-stage in-order core and a 2-wide out-of-order core);
//   - 18 application benchmarks (11 SPECINT2000-like, 7 DARPA-PERFECT-like)
//     for a custom 32-bit RISC ISA;
//   - a fault-injection engine classifying Vanished/OMM/UT/Hang/ED outcomes;
//   - the resilience library: LEAP-DICE/LHL/LEAP-ctrl/EDS hardened cells,
//     XOR-tree logic parity, DFC, a DIVA-style monitor core, software
//     assertions, CFCSS, EDDI, ABFT correction/detection, and four hardware
//     recovery mechanisms (IR, EIR, flush, RoB);
//   - layout and synthesis cost models;
//   - the cross-layer DSE engine (586 combinations, Heuristic 1 selective
//     insertion, γ-corrected Eq. 1 improvements);
//   - the experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// Quick start:
//
//	eng := clear.NewEngine(clear.InO)
//	b := clear.BenchmarkByName("gzip")
//	combo := clear.Combo{DICE: true, Parity: true, Recovery: clear.RecFlush}
//	out, err := eng.EvalCombo(b, combo, clear.SDC, 50)
//	// out.Cost.Energy() is the energy overhead of a 50x SDC improvement
package clear

import (
	"fmt"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/experiments"
	"clear/internal/inject"
	"clear/internal/prog"
	"clear/internal/recovery"
	"clear/internal/sim"
)

// Core kinds.
type CoreKind = inject.CoreKind

// The two processor designs.
const (
	InO = inject.InO
	OoO = inject.OoO
)

// Engine is the cross-layer exploration engine for one core design.
type Engine = core.Engine

// NewEngine returns an exploration engine with default campaign sampling.
func NewEngine(kind CoreKind) *Engine { return core.NewEngine(kind) }

// Combo is a cross-layer combination of resilience techniques.
type Combo = core.Combo

// Variant selects the high-layer (algorithm/software/architecture) parts of
// a combination.
type Variant = core.Variant

// Plan is a concrete per-flip-flop protection assignment.
type Plan = core.Plan

// Outcome is an evaluated combination: improvements, γ, and cost.
type Outcome = core.Outcome

// Metric selects SDC or DUE improvement targeting.
type Metric = core.Metric

// Improvement metrics.
const (
	SDC = core.SDC
	DUE = core.DUE
)

// Software technique selectors for Variant.SW.
const (
	SWAssertions = core.SWAssertions
	SWCFCSS      = core.SWCFCSS
	SWEDDI       = core.SWEDDI
)

// Algorithm-layer modes for Variant.ABFT.
const (
	ABFTNone = core.ABFTNone
	ABFTCorr = core.ABFTCorr
	ABFTDet  = core.ABFTDet
)

// Recovery kinds.
type RecoveryKind = recovery.Kind

// Hardware recovery mechanisms.
const (
	RecNone  = recovery.None
	RecFlush = recovery.Flush
	RecRoB   = recovery.RoB
	RecIR    = recovery.IR
	RecEIR   = recovery.EIR
)

// Benchmark is one of the 18 application benchmarks.
type Benchmark = bench.Benchmark

// Benchmarks returns the full benchmark suite (the in-order core's 18).
func Benchmarks() []*Benchmark { return bench.All() }

// BenchmarkByName returns a benchmark by name, or nil.
func BenchmarkByName(name string) *Benchmark { return bench.ByName(name) }

// Program is an executable CRV32 program image.
type Program = prog.Program

// Core is a cycle-level processor simulator with flip-flop-level state.
type Core = sim.Core

// NewCore instantiates a fresh core of the given kind bound to p.
func NewCore(kind CoreKind, p *Program) Core { return inject.NewCore(kind, p) }

// InjectionOutcome classifies a fault-injection run.
type InjectionOutcome = inject.Outcome

// Injection outcome classes (paper Sec 2.1).
const (
	Vanished = inject.Vanished
	OMM      = inject.OMM
	UT       = inject.UT
	Hang     = inject.Hang
	ED       = inject.ED
)

// InjectOne flips one flip-flop bit at the given cycle of a fresh run of p
// on a core of the given kind and classifies the outcome. nomCycles is the
// fault-free execution time (used for the 2x hang cutoff).
func InjectOne(kind CoreKind, p *Program, bit, cycle, nomCycles int) InjectionOutcome {
	c := inject.NewCore(kind, p)
	out, _ := inject.RunOne(c, p, bit, cycle, nomCycles, nil)
	return out
}

// Enumerate returns the valid cross-layer combinations of a core
// (417 for InO, 169 for OoO; 586 total — paper Table 18).
func Enumerate(kind CoreKind) []Combo { return core.Enumerate(kind) }

// Experiment regenerates one table or figure of the paper.
type Experiment = experiments.Experiment

// Experiments lists every reproducible table and figure.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment regenerates the identified table/figure ("table19", "fig9",
// ...) using default engines and returns its rendered text.
func RunExperiment(id string) (string, error) {
	e, ok := experiments.Get(id)
	if !ok {
		return "", fmt.Errorf("clear: unknown experiment %q", id)
	}
	return e.Run(experiments.NewCtx())
}
