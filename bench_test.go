package clear

// The benchmark harness: one testing.B per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment (campaign results
// come from the on-disk cache; run `go run ./cmd/precompute` first to warm
// it) and prints the rendered table to stdout, so
//
//	go test -bench=. -benchmem | tee bench_output.txt
//
// captures the full reproduced evaluation. Experiments are computed once
// and memoized; subsequent b.N iterations are cache hits.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"clear/internal/experiments"
)

var (
	expCtxOnce sync.Once
	expCtx     *experiments.Ctx
	expOut     sync.Map
)

func ctxForBench() *experiments.Ctx {
	expCtxOnce.Do(func() {
		expCtx = experiments.NewCtx()
		if os.Getenv("CLEAR_BENCH_QUICK") != "" {
			expCtx.InO.SamplesBase, expCtx.InO.SamplesTech = 1, 1
			expCtx.OoO.SamplesBase, expCtx.OoO.SamplesTech = 1, 1
		}
	})
	return expCtx
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, ok := expOut.Load(id); ok {
			continue
		}
		e, ok := experiments.Get(id)
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
		out, err := e.Run(ctxForBench())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		expOut.Store(id, out)
		fmt.Println(out)
	}
}

func BenchmarkTable01(b *testing.B)  { runExperiment(b, "table1") }
func BenchmarkTable02(b *testing.B)  { runExperiment(b, "table2") }
func BenchmarkTable03(b *testing.B)  { runExperiment(b, "table3") }
func BenchmarkTable04(b *testing.B)  { runExperiment(b, "table4") }
func BenchmarkTable05(b *testing.B)  { runExperiment(b, "table5") }
func BenchmarkTable06(b *testing.B)  { runExperiment(b, "table6") }
func BenchmarkTable07(b *testing.B)  { runExperiment(b, "table7") }
func BenchmarkTable08(b *testing.B)  { runExperiment(b, "table8") }
func BenchmarkTable09(b *testing.B)  { runExperiment(b, "table9") }
func BenchmarkTable10(b *testing.B)  { runExperiment(b, "table10") }
func BenchmarkTable11(b *testing.B)  { runExperiment(b, "table11") }
func BenchmarkTable12(b *testing.B)  { runExperiment(b, "table12") }
func BenchmarkTable13(b *testing.B)  { runExperiment(b, "table13") }
func BenchmarkTable14(b *testing.B)  { runExperiment(b, "table14") }
func BenchmarkTable15(b *testing.B)  { runExperiment(b, "table15") }
func BenchmarkTable16(b *testing.B)  { runExperiment(b, "table16") }
func BenchmarkTable17(b *testing.B)  { runExperiment(b, "table17") }
func BenchmarkTable18(b *testing.B)  { runExperiment(b, "table18") }
func BenchmarkTable19(b *testing.B)  { runExperiment(b, "table19") }
func BenchmarkTable20(b *testing.B)  { runExperiment(b, "table20") }
func BenchmarkTable21(b *testing.B)  { runExperiment(b, "table21") }
func BenchmarkTable22(b *testing.B)  { runExperiment(b, "table22") }
func BenchmarkTable23(b *testing.B)  { runExperiment(b, "table23") }
func BenchmarkTable24(b *testing.B)  { runExperiment(b, "table24") }
func BenchmarkTable25(b *testing.B)  { runExperiment(b, "table25") }
func BenchmarkTable26(b *testing.B)  { runExperiment(b, "table26") }
func BenchmarkTable27(b *testing.B)  { runExperiment(b, "table27") }
func BenchmarkFigure1d(b *testing.B) { runExperiment(b, "fig1d") }
func BenchmarkFigure08(b *testing.B) { runExperiment(b, "fig8") }
func BenchmarkFigure09(b *testing.B) { runExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { runExperiment(b, "fig10") }

func BenchmarkAblation1(b *testing.B) { runExperiment(b, "ablation1") }
func BenchmarkAblation2(b *testing.B) { runExperiment(b, "ablation2") }
