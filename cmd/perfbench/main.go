// Command perfbench measures compiled (threaded-code) execution against the
// decode-switch interpreter — and the gang-packed campaign engine against
// the scalar compiled loop — and writes the comparison as JSON: the
// before/after evidence behind the repo's BENCH_*.json files and the CI
// guard that neither compiled execution nor packed batching regresses.
//
// For each core × execution mode it reports nominal simulation speed
// (cycles/sec over repeated fault-free runs) and injection-campaign
// throughput (simulated cycles/sec through inject.Run, which bypasses the
// on-disk campaign cache), plus the one-time threaded-code translation cost
// of the benchmark program. The interpreted and compiled cells run the
// scalar campaign loop (preserving the BENCH_7 baseline definition); the
// packed cell runs the compiled 64-way gang engine. The process exits
// nonzero if compiled campaign throughput is below the interpreter's on any
// measured core, fails to strictly beat it on the out-of-order core, or if
// packed campaign throughput fails to strictly beat scalar compiled on
// either core — so CI can gate on the file it uploads.
//
//	perfbench -bench gzip -samples 1 -out BENCH_8.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"clear/internal/bench"
	"clear/internal/inject"
	"clear/internal/prog"
	"clear/internal/tcode"
)

type modeStats struct {
	NominalCycles        int     `json:"nominal_cycles"`
	NominalCyclesPerSec  float64 `json:"nominal_cycles_per_sec"`
	CampaignSeconds      float64 `json:"campaign_seconds"`
	CampaignInjections   int     `json:"campaign_injections"`
	CampaignCyclesPerSec float64 `json:"campaign_cycles_per_sec"`
}

type coreStats struct {
	Interpreted     modeStats `json:"interpreted"`
	Compiled        modeStats `json:"compiled"`
	Packed          modeStats `json:"packed"`
	CampaignSpeedup float64   `json:"campaign_speedup"`
	NominalSpeedup  float64   `json:"nominal_speedup"`
	// PackedSpeedup is packed vs scalar compiled campaign throughput — the
	// gang engine's win over the PR 7 baseline on the same compiled cores.
	PackedSpeedup float64 `json:"packed_speedup"`
}

type report struct {
	Bench         string               `json:"bench"`
	SamplesPerFF  int                  `json:"samples_per_ff"`
	TranslationUS float64              `json:"translation_us"`
	ProgramWords  int                  `json:"program_words"`
	Cores         map[string]coreStats `json:"cores"`
}

func main() {
	benchName := flag.String("bench", "gzip", "benchmark to measure")
	samples := flag.Int("samples", 1, "injections per flip-flop for the campaign measurement")
	nomReps := flag.Int("nom-reps", 20, "fault-free runs to average for nominal speed")
	out := flag.String("out", "BENCH_8.json", "output JSON path (empty = stdout only)")
	flag.Parse()

	if *samples < 1 {
		log.Fatalf("-samples must be >= 1 (got %d)", *samples)
	}
	if *nomReps < 1 {
		log.Fatalf("-nom-reps must be >= 1 (got %d)", *nomReps)
	}

	b := bench.ByName(*benchName)
	if b == nil {
		log.Fatalf("unknown benchmark %q (have: %v)", *benchName, bench.Names())
	}
	p, err := b.Program()
	if err != nil {
		log.Fatal(err)
	}

	// Translation cost: compile the program image afresh a few times.
	// (p.Threaded() memoizes, so fresh tcode.Translate calls are measured.)
	const transReps = 50
	t0 := time.Now()
	for i := 0; i < transReps; i++ {
		tcode.Translate(p.Words)
	}
	transUS := float64(time.Since(t0).Microseconds()) / transReps

	rep := report{
		Bench:         b.Name,
		SamplesPerFF:  *samples,
		TranslationUS: transUS,
		ProgramWords:  len(p.Words),
		Cores:         map[string]coreStats{},
	}

	failed := false
	for _, kind := range []inject.CoreKind{inject.InO, inject.OoO} {
		var cs coreStats
		cs.Interpreted = measure(kind, p, b.Name, false, false, *samples, *nomReps)
		cs.Compiled = measure(kind, p, b.Name, true, false, *samples, *nomReps)
		cs.Packed = measure(kind, p, b.Name, true, true, *samples, *nomReps)
		// Guard the speedup denominators: a degenerate measurement (zero
		// throughput) must fail the cell, not poison the report with NaN/Inf
		// that json.MarshalIndent rejects.
		if cs.Interpreted.CampaignCyclesPerSec <= 0 || cs.Interpreted.NominalCyclesPerSec <= 0 {
			fmt.Fprintf(os.Stderr, "perfbench: degenerate interpreted measurement on %s (campaign %.0f, nominal %.0f cycles/sec)\n",
				kind, cs.Interpreted.CampaignCyclesPerSec, cs.Interpreted.NominalCyclesPerSec)
			rep.Cores[kind.String()] = cs
			failed = true
			continue
		}
		if cs.Compiled.CampaignCyclesPerSec <= 0 {
			fmt.Fprintf(os.Stderr, "perfbench: degenerate compiled measurement on %s (campaign %.0f cycles/sec)\n",
				kind, cs.Compiled.CampaignCyclesPerSec)
			rep.Cores[kind.String()] = cs
			failed = true
			continue
		}
		cs.CampaignSpeedup = cs.Compiled.CampaignCyclesPerSec / cs.Interpreted.CampaignCyclesPerSec
		cs.NominalSpeedup = cs.Compiled.NominalCyclesPerSec / cs.Interpreted.NominalCyclesPerSec
		cs.PackedSpeedup = cs.Packed.CampaignCyclesPerSec / cs.Compiled.CampaignCyclesPerSec
		rep.Cores[kind.String()] = cs
		fmt.Printf("%s: nominal %.0f -> %.0f cycles/sec (%.2fx), campaign %.0f -> %.0f cycles/sec (%.2fx), packed %.0f cycles/sec (%.2fx over compiled)\n",
			kind,
			cs.Interpreted.NominalCyclesPerSec, cs.Compiled.NominalCyclesPerSec, cs.NominalSpeedup,
			cs.Interpreted.CampaignCyclesPerSec, cs.Compiled.CampaignCyclesPerSec, cs.CampaignSpeedup,
			cs.Packed.CampaignCyclesPerSec, cs.PackedSpeedup)
		// Gate: compiled must not lose to the interpreter anywhere, and on
		// the OoO core — where the unpacked mirror is supposed to pay off —
		// it must strictly win.
		if cs.CampaignSpeedup < 1.0 {
			fmt.Fprintf(os.Stderr, "perfbench: compiled campaign SLOWER than interpreted on %s (%.2fx)\n",
				kind, cs.CampaignSpeedup)
			failed = true
		} else if kind == inject.OoO && cs.CampaignSpeedup <= 1.0 {
			fmt.Fprintf(os.Stderr, "perfbench: compiled campaign did not beat interpreted on %s (%.2fx)\n",
				kind, cs.CampaignSpeedup)
			failed = true
		}
		// Gate: the packed gang engine must strictly beat the scalar
		// compiled loop on both cores — anything less means the batching
		// overhead ate its own win and the default engine choice is wrong.
		if cs.PackedSpeedup <= 1.0 {
			fmt.Fprintf(os.Stderr, "perfbench: packed campaign did not beat scalar compiled on %s (%.2fx)\n",
				kind, cs.PackedSpeedup)
			failed = true
		}
	}
	fmt.Printf("translation: %.1f us for %d words\n", transUS, len(p.Words))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	} else {
		os.Stdout.Write(data)
	}
	if failed {
		os.Exit(1)
	}
}

// measure runs the nominal-speed and campaign measurements for one
// (core, execution mode) cell. The campaign always computes (inject.Run,
// never the disk cache), with a fixed seed so all modes simulate the
// identical injection workload. packed selects the gang-batched campaign
// engine; the non-packed cells force the scalar loop so the interpreted and
// compiled baselines keep the BENCH_7 definition.
func measure(kind inject.CoreKind, p *prog.Program, name string, compiled, packed bool, samples, nomReps int) modeStats {
	prior := tcode.Enabled()
	tcode.SetEnabled(compiled)
	defer tcode.SetEnabled(prior)
	priorPacked := inject.Packed
	inject.Packed = packed
	defer func() { inject.Packed = priorPacked }()

	var s modeStats
	c := inject.NewCore(kind, p)
	t0 := time.Now()
	total := 0
	for i := 0; i < nomReps; i++ {
		c.Reset(p)
		res := c.Run(8_000_000)
		if res.Status != prog.StatusHalted {
			log.Fatalf("%s/%s nominal run failed: %v", kind, name, res.Status)
		}
		s.NominalCycles = res.Steps
		total += res.Steps
	}
	s.NominalCyclesPerSec = float64(total) / time.Since(t0).Seconds()

	cfg := inject.Config{Core: kind, Bench: name, SamplesPerFF: samples, Seed: 0xC1EA5}
	t0 = time.Now()
	res, err := inject.Run(cfg, p, nil)
	if err != nil {
		log.Fatalf("%s/%s campaign: %v", kind, name, err)
	}
	s.CampaignSeconds = time.Since(t0).Seconds()
	s.CampaignInjections = res.Totals.N
	// Throughput in simulated cycles/sec: the campaign's injection count
	// times the nominal length approximates simulated work; wall-clock per
	// injection is what the sweep feels, so cycles/sec = N*nominal/elapsed.
	s.CampaignCyclesPerSec = float64(res.Totals.N) * float64(res.NomCycles) / s.CampaignSeconds
	return s
}
