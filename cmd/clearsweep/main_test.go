package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"clear/internal/resilient"
)

// stateCells reads the sweep state file and reports how many cells it
// holds (-1 when the file does not exist or does not parse yet).
func stateCells(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return -1
	}
	var st struct {
		Cells map[string]json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return -1
	}
	return len(st.Cells)
}

// TestSignalInterruptAndResume drives the built clearsweep binary through
// the operator story: SIGINT mid-sweep must flush the state file and exit
// with the resumable status, and a follow-up run must restore the
// completed cells and finish cleanly.
func TestSignalInterruptAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the clearsweep binary")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "clearsweep")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	state := filepath.Join(dir, "state.json")
	cacheDir := filepath.Join(dir, "cache")
	args := []string{
		"-quick", "-core", "InO", "-bench", "gzip",
		"-max-combos", "48", "-workers", "2",
		"-state", state, "-flush-every", "1",
	}
	env := append(os.Environ(), "CLEAR_CACHE_DIR="+cacheDir)

	// Run 1: interrupt as soon as the first cells are flushed.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	first := exec.CommandContext(ctx, bin, args...)
	first.Env = env
	var out1 bytes.Buffer
	first.Stdout, first.Stderr = &out1, &out1
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(60 * time.Second); stateCells(state) < 1; {
		if time.Now().After(deadline) {
			first.Process.Kill()
			t.Fatalf("no state flushed within the deadline; output:\n%s", out1.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := first.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err := first.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("interrupted run: err = %v (completed before the signal landed?); output:\n%s", err, out1.String())
	}
	if code := ee.ExitCode(); code != resilient.ExitResumable {
		t.Fatalf("interrupted run exit code = %d, want %d (resumable); output:\n%s",
			code, resilient.ExitResumable, out1.String())
	}
	flushed := stateCells(state)
	if flushed < 1 {
		t.Fatalf("state file lost after interrupt (cells = %d)", flushed)
	}
	if !bytes.Contains(out1.Bytes(), []byte("rerun the same command to resume")) {
		t.Fatalf("interrupted run did not announce resumability; output:\n%s", out1.String())
	}

	// Run 2: same command resumes from the flushed cells and completes.
	second := exec.CommandContext(ctx, bin, args...)
	second.Env = env
	out2, err := second.CombinedOutput()
	if err != nil {
		t.Fatalf("resumed run failed: %v\n%s", err, out2)
	}
	if !bytes.Contains(out2, []byte("restored from state")) {
		t.Fatalf("resumed run did not restore the flushed cells; output:\n%s", out2)
	}
	if got := stateCells(state); got != 48 {
		t.Fatalf("final state holds %d cells, want 48", got)
	}
}
