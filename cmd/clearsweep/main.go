// Command clearsweep runs the full cross-layer exploration: all 586
// combinations on both cores at a target improvement, printing each
// combination's achieved improvements and costs plus the Pareto-optimal
// set — the sweep behind the paper's Fig. 1d and its "which cross-layer
// solutions are best" conclusions.
//
// The exploration itself lives in internal/sweep: cells run concurrently
// on a work-stealing pool (-workers), and -state points at a JSON file
// that makes the sweep resumable — an interrupted run picks up from its
// completed cells. -techniques restricts the enumeration to a subset of
// the registered techniques (include list or -name excludes); the state
// file is keyed on the filter, so a resume under a different selection
// starts fresh instead of mixing grids. Long runs are fault-tolerant: cell panics are isolated
// and classified, hung cells trip a watchdog (-cell-timeout or the
// adaptive -cell-timeout-factor), transient failures retry with backoff
// (-retries), SIGINT/SIGTERM drains in-flight cells and flushes state
// (exit status 3 = resumable; a second signal exits immediately), and the
// state file is lock-protected against concurrent sweeps.
//
// Observability (internal/obs): -metrics-addr serves live counters,
// gauges, and latency histograms as JSON at /metrics (plus expvar at
// /debug/vars and pprof at /debug/pprof/), and -trace-out writes a JSONL
// event trace — one record per sweep event and per injection campaign —
// that replays the run and diffs cleanly against another. Neither flag
// changes results: an instrumented sweep is bit-identical to a plain one.
//
// Exit statuses: 0 success, 1 completed with failed cells (or internal
// error), 2 another sweep holds the -state lock, 3 interrupted with
// resumable state flushed, 130 second-signal hard exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"clear/internal/analysis"
	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/obs"
	"clear/internal/recovery"
	"clear/internal/resilient"
	"clear/internal/sweep"
	"clear/internal/tcode"
	"clear/internal/technique"
)

func main() {
	target := flag.Float64("target", 50, "SDC improvement target (0 = max)")
	coreName := flag.String("core", "InO", "core design: InO or OoO")
	benchName := flag.String("bench", "", "evaluate on a single benchmark (default: average all)")
	topN := flag.Int("top", 25, "print the N cheapest combinations")
	quick := flag.Bool("quick", false, "reduced sampling")
	workers := flag.Int("workers", 0, "concurrent cell evaluations (0 = one per CPU)")
	statePath := flag.String("state", "", "sweep state file for interrupt/resume (empty = no persistence)")
	flushEvery := flag.Int("flush-every", 16, "completed cells between state flushes (lower = safer against kills)")
	cellTimeout := flag.Duration("cell-timeout", 0,
		"fixed watchdog deadline per cell (0 = derive adaptively, negative = no watchdog)")
	cellFactor := flag.Float64("cell-timeout-factor", 20,
		"adaptive watchdog: deadline = factor x slowest successful cell (used when -cell-timeout is 0; <= 0 disables)")
	retries := flag.Int("retries", 2, "retry budget for transiently failing cells (timeouts, cache IO)")
	maxCombos := flag.Int("max-combos", 0, "evaluate only the first N combinations (0 = all; smoke tests)")
	techniques := flag.String("techniques", "",
		"comma-separated technique filter: names include (e.g. LEAP-DICE,Parity), -name excludes (e.g. -EDS); empty = all")
	faultModel := flag.String("fault-model", inject.DefaultModel,
		"fault model for every campaign: "+strings.Join(inject.ModelNames(), ", "))
	selective := flag.String("selective", "",
		"comma-separated top-k unit counts adding structure-granularity selective-hardening points to the frontier (e.g. 1,2,4; empty = off)")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics, /debug/vars and /debug/pprof on this address while the sweep runs (e.g. 127.0.0.1:9090; empty = off)")
	traceOut := flag.String("trace-out", "",
		"write a JSONL event trace (sweep events + campaign records) to this file (empty = off)")
	compiled := flag.Bool("compiled", true,
		"execute programs as pre-translated threaded code (false = decode-switch interpreter; bit-identical escape hatch)")
	packed := flag.Bool("packed", true,
		"batch campaign injections into 64-way gangs with shared prefix replay (false = scalar loop; bit-identical escape hatch)")
	flag.Parse()
	tcode.SetEnabled(*compiled)
	inject.Packed = *packed

	var kind inject.CoreKind
	switch strings.ToLower(*coreName) {
	case "ino":
		kind = inject.InO
	case "ooo":
		kind = inject.OoO
	default:
		log.Fatalf("unknown -core %q (accepted: InO, OoO)", *coreName)
	}
	e := core.NewEngine(kind)
	if inject.LookupModel(*faultModel) == nil {
		log.Fatalf("unknown -fault-model %q (accepted: %s)", *faultModel, strings.Join(inject.ModelNames(), ", "))
	}
	e.FaultModel = *faultModel
	if *quick {
		e.SamplesBase, e.SamplesTech = 1, 1
	}
	tgt := *target
	if tgt == 0 {
		tgt = math.Inf(1)
	}

	var benches []*bench.Benchmark
	if *benchName != "" {
		b := bench.ByName(*benchName)
		if b == nil {
			log.Fatalf("unknown benchmark %q (have: %v)", *benchName, bench.Names())
		}
		benches = []*bench.Benchmark{b}
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		e.Instrument(reg)
		bound, shutdown, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("-metrics-addr: %v", err)
		}
		defer shutdown()
		log.Printf("metrics: http://%s/metrics (pprof under http://%s/debug/pprof/)", bound, bound)
	}
	observer := sweep.Observer(sweep.LogObserver{Printf: log.Printf})
	if *traceOut != "" {
		tr, err := obs.OpenTrace(*traceOut)
		if err != nil {
			log.Fatalf("-trace-out: %v", err)
		}
		defer func() {
			if err := tr.Close(); err != nil {
				log.Printf("trace: %v", err)
			}
		}()
		e.Inj.Tracer = tr
		observer = sweep.MultiObserver{observer, sweep.TraceObserver{T: tr}}
	}

	ctx, stop := resilient.WithSignals(context.Background())
	defer stop()

	sw := sweep.New(e, benches, core.SDC, tgt)
	if filter, err := technique.ParseFilter(*techniques, technique.Default()); err != nil {
		log.Fatalf("-techniques: %v", err)
	} else if filter != nil {
		sw.ApplyFilter(e, filter)
		log.Printf("technique filter: %s (%d combinations)", filter.Spec(), len(sw.Combos))
	}
	if e.FaultModel != inject.DefaultModel {
		log.Printf("fault model: %s (%d combinations remain effective)", e.FaultModel, len(sw.Combos))
	}
	if *maxCombos > 0 && *maxCombos < len(sw.Combos) {
		sw.Combos = sw.Combos[:*maxCombos]
	}
	log.Printf("evaluating %d combinations on %d benchmark(s) at %sx SDC target...",
		len(sw.Combos), len(sw.Benches), fmtTarget(tgt))
	res, err := sweep.Run(ctx, sw, sweep.Options{
		Workers:           *workers,
		StatePath:         *statePath,
		FlushEvery:        *flushEvery,
		Observer:          observer,
		Metrics:           reg,
		CellTimeout:       *cellTimeout,
		CellTimeoutFactor: *cellFactor,
		Retry: resilient.Policy{
			MaxAttempts: 1 + *retries,
			BaseDelay:   time.Second,
			Seed:        e.Seed,
		},
	})
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		if *statePath != "" {
			log.Printf("sweep interrupted: completed cells flushed to %s — rerun the same command to resume", *statePath)
			os.Exit(resilient.ExitResumable)
		}
		log.Print("sweep interrupted (no -state file, progress lost)")
		os.Exit(1)
	case sweep.IsLocked(err):
		log.Printf("%v", err)
		os.Exit(2)
	default:
		log.Fatalf("sweep: %v", err)
	}

	fmt.Printf("\ncheapest combinations meeting a %sx SDC target on %s:\n", fmtTarget(tgt), kind)
	fmt.Printf("%-58s %10s %10s %8s %8s %s\n", "combination", "SDC imp", "DUE imp", "area", "energy", "met")
	printed, met := 0, 0
	for _, r := range res.Rows {
		if !r.Met {
			continue
		}
		met++
		if printed >= *topN {
			continue
		}
		fmt.Printf("%-58s %10s %10s %7.1f%% %7.1f%% %v\n",
			r.Name, fmtImp(r.SDCImp), fmtImp(r.DUEImp), 100*r.Area, 100*r.Energy, r.Met)
		printed++
	}

	// The -selective axis: structure-granularity cost points (protect the
	// top-k most SDC-vulnerable units outright) evaluated on the aggregated
	// baseline campaigns and merged into the frontier, so the printout shows
	// whether unit-level insertion competes with flip-flop-level plans.
	if *selective != "" {
		ks, err := parseKList(*selective)
		if err != nil {
			log.Fatalf("-selective: %v", err)
		}
		var rs []*inject.Result
		for _, b := range sw.Benches {
			r, err := e.Base(b)
			if err != nil {
				log.Fatalf("-selective: baseline campaign %s: %v", b.Name, err)
			}
			rs = append(rs, r)
		}
		agg := analysis.Aggregate(rs)
		opt := core.HardenOptions{
			DICE: true, Parity: true, EDS: true,
			Recovery:    recovery.None,
			FixedGamma:  1,
			BaseSDCRate: float64(agg.Totals.SDC()) / float64(agg.Totals.N),
			BaseDUERate: float64(agg.Totals.UT+agg.Totals.Hang) / float64(agg.Totals.N),
		}
		fmt.Printf("\nselective structure-granularity points (baseline campaigns, %d benchmark(s)):\n", len(rs))
		var pts []core.ParetoPoint
		for _, k := range ks {
			pt, _, units := e.SelectiveHardening(agg, opt, core.SDC, k)
			fmt.Printf("  top-%-3d %10s %7.1f%%  units: %s\n",
				k, fmtImp(pt.Improvement), 100*pt.Energy, strings.Join(units, ", "))
			pts = append(pts, pt)
		}
		res.Frontier = core.ParetoFrontier(append(append([]core.ParetoPoint{}, res.Frontier...), pts...))
	}

	fmt.Printf("\nPareto frontier (SDC improvement vs energy), %d points:\n", len(res.Frontier))
	for _, p := range res.Frontier {
		fmt.Printf("  %-58s %10s %7.1f%%\n", p.Name, fmtImp(p.Improvement), 100*p.Energy)
	}

	fmt.Printf("\n%d of %d combinations met the target\n", met, len(res.Rows))
	if res.Restored > 0 {
		fmt.Printf("(%d cells restored from %s)\n", res.Restored, *statePath)
	}
	if q := inject.QuarantineStats(); q > 0 {
		fmt.Printf("(%d corrupt cache entries quarantined as *.corrupt and recomputed)\n", q)
	}
	if n := len(res.Failures); n > 0 {
		fmt.Printf("\n%d cell(s) FAILED:\n", n)
		for _, f := range res.Failures {
			fmt.Printf("  %s / %s [%s, %d attempt(s)]: %s\n", f.Combo, f.Bench, f.Kind, f.Attempts, f.Err)
			if f.Stack != "" {
				fmt.Printf("    stack:\n%s\n", indent(f.Stack, "      "))
			}
		}
		os.Exit(1)
	}
}

// parseKList parses the -selective value: positive comma-separated top-k
// unit counts.
func parseKList(s string) ([]int, error) {
	var ks []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := strconv.Atoi(part)
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("bad top-k value %q (want positive integers, e.g. 1,2,4)", part)
		}
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("no top-k values in %q", s)
	}
	return ks, nil
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return prefix + strings.Join(lines, "\n"+prefix)
}

func fmtTarget(v float64) string {
	if math.IsInf(v, 1) {
		return "max"
	}
	return fmt.Sprintf("%.0f", v)
}

func fmtImp(v float64) string {
	if math.IsInf(v, 1) {
		return "max"
	}
	return fmt.Sprintf("%.1fx", v)
}
