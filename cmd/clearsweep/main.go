// Command clearsweep runs the full cross-layer exploration: all 586
// combinations on both cores at a target improvement, printing each
// combination's achieved improvements and costs plus the Pareto-optimal
// set — the sweep behind the paper's Fig. 1d and its "which cross-layer
// solutions are best" conclusions.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
)

func main() {
	target := flag.Float64("target", 50, "SDC improvement target (0 = max)")
	coreName := flag.String("core", "InO", "core design: InO or OoO")
	benchName := flag.String("bench", "", "evaluate on a single benchmark (default: average all)")
	topN := flag.Int("top", 25, "print the N cheapest combinations")
	quick := flag.Bool("quick", false, "reduced sampling")
	flag.Parse()

	kind := inject.InO
	if *coreName == "OoO" {
		kind = inject.OoO
	}
	e := core.NewEngine(kind)
	if *quick {
		e.SamplesBase, e.SamplesTech = 1, 1
	}
	tgt := *target
	if tgt == 0 {
		tgt = math.Inf(1)
	}

	var benches []*bench.Benchmark
	if *benchName != "" {
		b := bench.ByName(*benchName)
		if b == nil {
			log.Fatalf("unknown benchmark %q", *benchName)
		}
		benches = []*bench.Benchmark{b}
	} else {
		benches = e.Benchmarks()
	}

	var rows []sweepRow
	t0 := time.Now()
	combos := core.Enumerate(kind)
	log.Printf("evaluating %d combinations on %d benchmark(s) at %sx SDC target...",
		len(combos), len(benches), fmtTarget(tgt))
	for i, c := range combos {
		var sdcInv, dueInv, energy, area float64
		met := true
		n := 0
		for _, b := range benches {
			out, err := e.EvalCombo(b, c, core.SDC, tgt)
			if err != nil {
				log.Fatalf("%s: %v", c.Name(), err)
			}
			sdcInv += inv(out.SDCImp)
			dueInv += inv(out.DUEImp)
			energy += out.Cost.Energy()
			area += out.Cost.Area
			met = met && out.TargetMet
			n++
		}
		fn := float64(n)
		rows = append(rows, sweepRow{
			name:   c.Name(),
			sdcImp: fn / sdcInv, dueImp: fn / dueInv,
			energy: energy / fn, area: area / fn,
			met: met,
		})
		if (i+1)%50 == 0 {
			log.Printf("  %d/%d done (%s elapsed)", i+1, len(combos), time.Since(t0).Round(time.Second))
		}
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].energy < rows[j].energy })
	fmt.Printf("\ncheapest combinations meeting a %sx SDC target on %s:\n", fmtTarget(tgt), kind)
	fmt.Printf("%-58s %10s %10s %8s %8s %s\n", "combination", "SDC imp", "DUE imp", "area", "energy", "met")
	printed := 0
	for _, r := range rows {
		if !r.met {
			continue
		}
		fmt.Printf("%-58s %10s %10s %7.1f%% %7.1f%% %v\n",
			r.name, fmtImp(r.sdcImp), fmtImp(r.dueImp), 100*r.area, 100*r.energy, r.met)
		printed++
		if printed >= *topN {
			break
		}
	}
	fmt.Printf("\n%d of %d combinations met the target; total sweep time %s\n",
		countMet(rows), len(rows), time.Since(t0).Round(time.Second))
}

func inv(v float64) float64 {
	if math.IsInf(v, 1) || v <= 0 {
		return 1e-9
	}
	return 1 / v
}

type sweepRow struct {
	name           string
	sdcImp, dueImp float64
	energy, area   float64
	met            bool
}

func countMet(rows []sweepRow) int {
	n := 0
	for _, r := range rows {
		if r.met {
			n++
		}
	}
	return n
}

func fmtTarget(v float64) string {
	if math.IsInf(v, 1) {
		return "max"
	}
	return fmt.Sprintf("%.0f", v)
}

func fmtImp(v float64) string {
	if math.IsInf(v, 1) {
		return "max"
	}
	return fmt.Sprintf("%.1fx", v)
}
