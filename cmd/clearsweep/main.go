// Command clearsweep runs the full cross-layer exploration: all 586
// combinations on both cores at a target improvement, printing each
// combination's achieved improvements and costs plus the Pareto-optimal
// set — the sweep behind the paper's Fig. 1d and its "which cross-layer
// solutions are best" conclusions.
//
// The exploration itself lives in internal/sweep: cells run concurrently
// on a work-stealing pool (-workers), and -state points at a JSON file
// that makes the sweep resumable — an interrupted run picks up from its
// completed cells. A failing cell no longer aborts the sweep; failures are
// reported in the summary and make the exit status non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/sweep"
)

func main() {
	target := flag.Float64("target", 50, "SDC improvement target (0 = max)")
	coreName := flag.String("core", "InO", "core design: InO or OoO")
	benchName := flag.String("bench", "", "evaluate on a single benchmark (default: average all)")
	topN := flag.Int("top", 25, "print the N cheapest combinations")
	quick := flag.Bool("quick", false, "reduced sampling")
	workers := flag.Int("workers", 0, "concurrent cell evaluations (0 = one per CPU)")
	statePath := flag.String("state", "", "sweep state file for interrupt/resume (empty = no persistence)")
	flag.Parse()

	var kind inject.CoreKind
	switch strings.ToLower(*coreName) {
	case "ino":
		kind = inject.InO
	case "ooo":
		kind = inject.OoO
	default:
		log.Fatalf("unknown -core %q (accepted: InO, OoO)", *coreName)
	}
	e := core.NewEngine(kind)
	if *quick {
		e.SamplesBase, e.SamplesTech = 1, 1
	}
	tgt := *target
	if tgt == 0 {
		tgt = math.Inf(1)
	}

	var benches []*bench.Benchmark
	if *benchName != "" {
		b := bench.ByName(*benchName)
		if b == nil {
			log.Fatalf("unknown benchmark %q (have: %v)", *benchName, bench.Names())
		}
		benches = []*bench.Benchmark{b}
	}

	sw := sweep.New(e, benches, core.SDC, tgt)
	log.Printf("evaluating %d combinations on %d benchmark(s) at %sx SDC target...",
		len(sw.Combos), len(sw.Benches), fmtTarget(tgt))
	res, err := sweep.Run(context.Background(), sw, sweep.Options{
		Workers:   *workers,
		StatePath: *statePath,
		Observer:  sweep.LogObserver{Printf: log.Printf},
	})
	if err != nil {
		log.Fatalf("sweep: %v", err)
	}

	fmt.Printf("\ncheapest combinations meeting a %sx SDC target on %s:\n", fmtTarget(tgt), kind)
	fmt.Printf("%-58s %10s %10s %8s %8s %s\n", "combination", "SDC imp", "DUE imp", "area", "energy", "met")
	printed, met := 0, 0
	for _, r := range res.Rows {
		if !r.Met {
			continue
		}
		met++
		if printed >= *topN {
			continue
		}
		fmt.Printf("%-58s %10s %10s %7.1f%% %7.1f%% %v\n",
			r.Name, fmtImp(r.SDCImp), fmtImp(r.DUEImp), 100*r.Area, 100*r.Energy, r.Met)
		printed++
	}

	fmt.Printf("\nPareto frontier (SDC improvement vs energy), %d points:\n", len(res.Frontier))
	for _, p := range res.Frontier {
		fmt.Printf("  %-58s %10s %7.1f%%\n", p.Name, fmtImp(p.Improvement), 100*p.Energy)
	}

	fmt.Printf("\n%d of %d combinations met the target\n", met, len(res.Rows))
	if n := len(res.Failures); n > 0 {
		fmt.Printf("\n%d cell(s) FAILED:\n", n)
		for _, f := range res.Failures {
			fmt.Printf("  %s / %s: %s\n", f.Combo, f.Bench, f.Err)
		}
		os.Exit(1)
	}
}

func fmtTarget(v float64) string {
	if math.IsInf(v, 1) {
		return "max"
	}
	return fmt.Sprintf("%.0f", v)
}

func fmtImp(v float64) string {
	if math.IsInf(v, 1) {
		return "max"
	}
	return fmt.Sprintf("%.1fx", v)
}
