// Command analyze runs an attribution-carrying injection campaign for one
// (core, benchmark) pair and prints what a designer hardens first: the
// per-unit AVF ranking with binomial confidence intervals, the outcome
// breakdown by pipeline structure, and the static instructions whose
// in-flight state absorbed the failing strikes.
//
//	analyze -core InO -bench gzip -samples 4
//	analyze -core OoO -bench mcf -top 8 -records recs.jsonl
//
// The campaign always computes (it never reads the on-disk campaign cache:
// cache hits replay no injections and would yield no attribution records),
// so -samples defaults low. Attribution observes without influencing — the
// printed outcome totals are bit-identical to faultinject's for the same
// configuration.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"clear/internal/analysis"
	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/isa"
	"clear/internal/obs"
	"clear/internal/tcode"
)

func main() {
	coreName := flag.String("core", "InO", "core design: InO or OoO")
	benchName := flag.String("bench", "gzip", "benchmark name")
	samples := flag.Int("samples", 4, "injections per flip-flop")
	top := flag.Int("top", 12, "instruction-ranking rows to print")
	z := flag.Float64("z", 1.96, "z-score for the AVF confidence intervals (1.96 = 95%)")
	recordsOut := flag.String("records", "",
		"also write the per-injection attribution records as JSONL to this file (empty = off)")
	compiled := flag.Bool("compiled", true,
		"execute programs as pre-translated threaded code (false = decode-switch interpreter; bit-identical escape hatch)")
	flag.Parse()
	tcode.SetEnabled(*compiled)

	var kind inject.CoreKind
	switch strings.ToLower(*coreName) {
	case "ino":
		kind = inject.InO
	case "ooo":
		kind = inject.OoO
	default:
		log.Fatalf("unknown -core %q (accepted: InO, OoO)", *coreName)
	}
	b := bench.ByName(*benchName)
	if b == nil {
		log.Fatalf("unknown benchmark %q (have: %v)", *benchName, bench.Names())
	}
	p, err := b.Program()
	if err != nil {
		log.Fatalf("program: %v", err)
	}

	e := core.NewEngine(kind)
	buf := &inject.RecordBuffer{}
	e.Inj.Sink = buf
	if *recordsOut != "" {
		tr, err := obs.OpenTrace(*recordsOut)
		if err != nil {
			log.Fatalf("-records: %v", err)
		}
		defer func() {
			if err := tr.Close(); err != nil {
				log.Printf("records: %v", err)
			}
		}()
		e.Inj.Sink = inject.MultiSink{buf, inject.TraceSink{T: tr}}
	}

	cfg := inject.Config{
		Core:         kind,
		Bench:        b.Name,
		Tag:          "base",
		SamplesPerFF: *samples,
		Seed:         e.Seed,
	}
	res, err := e.Inj.Run(cfg, p, nil)
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}

	tot := res.Totals
	fmt.Printf("%s / %s: %d injections over %d flip-flops, nominal %d cycles\n",
		kind, b.Name, tot.N, len(res.PerFF), res.NomCycles)
	fmt.Printf("outcomes: Vanished %d  OMM %d  UT %d  Hang %d  ED %d\n\n",
		tot.Vanished, tot.OMM, tot.UT, tot.Hang, tot.ED)

	fmt.Printf("unit AVF ranking (z=%.2f):\n", *z)
	fmt.Printf("%-12s %6s %7s %8s %17s %7s %7s %6s %5s %5s %5s\n",
		"unit", "bits", "N", "AVF", "95% CI", "SDC", "DUE", "OMM", "UT", "Hang", "ED")
	for _, u := range analysis.UnitRanking(e.Space, res, *z) {
		fmt.Printf("%-12s %6d %7d %7.2f%% [%6.2f%%,%6.2f%%] %6.2f%% %6.2f%% %6d %5d %5d %5d\n",
			u.Unit, u.Bits, u.N, 100*u.AVF, 100*u.CILo, 100*u.CIHi,
			100*u.SDCFrac, 100*u.DUEFrac, u.OMM, u.UT, u.Hang, u.ED)
	}

	recs := buf.Records()
	insts := analysis.InstRanking(recs, p)
	attributed := 0
	for _, c := range insts {
		attributed += c.N
	}
	fmt.Printf("\ninstruction failure contributions (%d of %d records attributed to %d static instructions):\n",
		attributed, len(recs), len(insts))
	fmt.Printf("%-6s %-22s %7s %6s %6s %7s\n", "pc", "inst", "N", "SDC", "DUE", "share")
	for i, c := range insts {
		if i >= *top {
			fmt.Printf("  ... %d more\n", len(insts)-i)
			break
		}
		name := "(out of range)"
		if c.InRange {
			name = isa.Decode(c.Word).Op.String()
		}
		fmt.Printf("%-6d %-22s %7d %6d %6d %6.2f%%\n",
			c.PC, name, c.N, c.SDC, c.DUE, 100*c.Share)
	}
	if *recordsOut != "" {
		fmt.Printf("\nwrote %d attribution records to %s\n", len(recs), *recordsOut)
	}
}
