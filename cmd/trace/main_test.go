package main

import (
	"strings"
	"testing"
)

// TestFlagValidation pins strict -core/-transform validation: unknown values
// must fail with a diagnostic even in modes that would not otherwise consult
// the flag (disassembly ignores -core, so a typo used to pass silently).
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // "" = must succeed
		wantOut string
	}{
		{"disassemble", []string{"-bench", "gzip"}, "", "basic blocks"},
		{"bad core without -run", []string{"-bench", "gzip", "-core", "bogus"}, `unknown -core "bogus"`, ""},
		{"bad core with -run", []string{"-bench", "gzip", "-run", "-core", "bogus"}, `unknown -core "bogus"`, ""},
		{"bad transform", []string{"-bench", "gzip", "-transform", "bogus"}, `unknown transform "bogus"`, ""},
		{"bad bench", []string{"-bench", "bogus"}, `unknown benchmark "bogus"`, ""},
		{"run ok", []string{"-bench", "gzip", "-run", "-core", "ooo", "-n", "1"}, "", "committed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			err := run(tc.args, &out)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("args %v: unexpected error: %v", tc.args, err)
				}
				if !strings.Contains(out.String(), tc.wantOut) {
					t.Fatalf("args %v: output missing %q:\n%s", tc.args, tc.wantOut, out.String())
				}
				return
			}
			if err == nil {
				t.Fatalf("args %v: expected error containing %q, got nil\noutput:\n%s", tc.args, tc.wantErr, out.String())
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("args %v: error %q missing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}
