// Command trace disassembles a benchmark (optionally after a software
// resilience transform) and can trace its committed instruction stream on
// either core — the debugging view behind the simulators.
//
//	trace -bench gzip                      # disassembly
//	trace -bench gzip -transform eddi      # EDDI-protected disassembly
//	trace -bench gzip -run -core OoO -n 40 # first 40 commits on the OoO core
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"clear/internal/bench"
	"clear/internal/inject"
	"clear/internal/isa"
	"clear/internal/prog"
	"clear/internal/sim"
	"clear/internal/swres"
)

func main() {
	benchName := flag.String("bench", "gzip", "benchmark name")
	transform := flag.String("transform", "", "software transform: eddi, eddi-srb, seddi, cfcss, assert")
	run := flag.Bool("run", false, "trace committed instructions instead of disassembling")
	coreName := flag.String("core", "InO", "core for -run: InO or OoO")
	n := flag.Int("n", 30, "number of commits to trace with -run")
	flag.Parse()

	b := bench.ByName(*benchName)
	if b == nil {
		log.Fatalf("unknown benchmark %q (have: %v)", *benchName, bench.Names())
	}
	p, err := b.Program()
	if err != nil {
		log.Fatal(err)
	}
	switch *transform {
	case "":
	case "eddi":
		p, err = swres.EDDI(p, false)
	case "eddi-srb":
		p, err = swres.EDDI(p, true)
	case "seddi":
		p, err = swres.SelectiveEDDI(p)
	case "cfcss":
		p, err = swres.CFCSS(p)
	case "assert":
		p, err = swres.Assertions(p, swres.AssertCombined)
	default:
		log.Fatalf("unknown transform %q", *transform)
	}
	if err != nil {
		log.Fatal(err)
	}

	if !*run {
		disassemble(p)
		return
	}

	kind := inject.InO
	if *coreName == "OoO" {
		kind = inject.OoO
	}
	c := inject.NewCore(kind, p)
	count := 0
	c.SetCommitHook(func(ev sim.CommitEvent) bool {
		if count < *n {
			fmt.Printf("%6d  pc=%-5d %v\n", count, ev.PC, decodeStr(ev.Word))
		}
		count++
		return false
	})
	res := c.Run(20_000_000)
	fmt.Printf("... %d instructions committed in %d cycles (%v), output %v\n",
		count, res.Steps, res.Status, res.Output)
}

func disassemble(p *prog.Program) {
	// invert the label map for annotation
	byPC := map[int][]string{}
	for l, pc := range p.Labels {
		byPC[pc] = append(byPC[pc], l)
	}
	fmt.Printf("%s: %d instructions, %d basic blocks, %d data words\n\n",
		p.Name, len(p.Code), len(p.Blocks), len(p.Data))
	for pc, in := range p.Code {
		labels := byPC[pc]
		sort.Strings(labels)
		for _, l := range labels {
			fmt.Printf("%s:\n", l)
		}
		marker := " "
		if bi := p.BlockOf(pc); bi >= 0 && p.Blocks[bi].Start == pc {
			marker = "▸"
		}
		fmt.Printf("%s %5d  %s\n", marker, pc, in)
	}
}

func decodeStr(word uint32) string {
	return isa.Decode(word).String()
}
