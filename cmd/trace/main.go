// Command trace disassembles a benchmark (optionally after a software
// resilience transform) and can trace its committed instruction stream on
// either core — the debugging view behind the simulators.
//
//	trace -bench gzip                      # disassembly
//	trace -bench gzip -transform eddi      # EDDI-protected disassembly
//	trace -bench gzip -run -core OoO -n 40 # first 40 commits on the OoO core
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"clear/internal/bench"
	"clear/internal/inject"
	"clear/internal/isa"
	"clear/internal/prog"
	"clear/internal/sim"
	"clear/internal/swres"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run holds the whole CLI so tests can drive flag validation in-process.
// Every flag is validated up front — a typo'd -core or -transform fails
// loudly even in modes that would not otherwise consult the flag.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	benchName := fs.String("bench", "gzip", "benchmark name")
	transform := fs.String("transform", "", "software transform: eddi, eddi-srb, seddi, cfcss, assert")
	runFlag := fs.Bool("run", false, "trace committed instructions instead of disassembling")
	coreName := fs.String("core", "InO", "core for -run: InO or OoO")
	n := fs.Int("n", 30, "number of commits to trace with -run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	b := bench.ByName(*benchName)
	if b == nil {
		return fmt.Errorf("unknown benchmark %q (have: %v)", *benchName, bench.Names())
	}
	p, err := b.Program()
	if err != nil {
		return err
	}
	switch *transform {
	case "":
	case "eddi":
		p, err = swres.EDDI(p, false)
	case "eddi-srb":
		p, err = swres.EDDI(p, true)
	case "seddi":
		p, err = swres.SelectiveEDDI(p)
	case "cfcss":
		p, err = swres.CFCSS(p)
	case "assert":
		p, err = swres.Assertions(p, swres.AssertCombined)
	default:
		return fmt.Errorf("unknown transform %q (accepted: eddi, eddi-srb, seddi, cfcss, assert)", *transform)
	}
	if err != nil {
		return err
	}

	var kind inject.CoreKind
	switch strings.ToLower(*coreName) {
	case "ino":
		kind = inject.InO
	case "ooo":
		kind = inject.OoO
	default:
		return fmt.Errorf("unknown -core %q (accepted: InO, OoO)", *coreName)
	}

	if !*runFlag {
		disassemble(w, p)
		return nil
	}

	c := inject.NewCore(kind, p)
	count := 0
	c.SetCommitHook(func(ev sim.CommitEvent) bool {
		if count < *n {
			fmt.Fprintf(w, "%6d  pc=%-5d %v\n", count, ev.PC, decodeStr(ev.Word))
		}
		count++
		return false
	})
	res := c.Run(20_000_000)
	fmt.Fprintf(w, "... %d instructions committed in %d cycles (%v), output %v\n",
		count, res.Steps, res.Status, res.Output)
	return nil
}

func disassemble(w io.Writer, p *prog.Program) {
	// invert the label map for annotation
	byPC := map[int][]string{}
	for l, pc := range p.Labels {
		byPC[pc] = append(byPC[pc], l)
	}
	fmt.Fprintf(w, "%s: %d instructions, %d basic blocks, %d data words\n\n",
		p.Name, len(p.Code), len(p.Blocks), len(p.Data))
	for pc, in := range p.Code {
		labels := byPC[pc]
		sort.Strings(labels)
		for _, l := range labels {
			fmt.Fprintf(w, "%s:\n", l)
		}
		marker := " "
		if bi := p.BlockOf(pc); bi >= 0 && p.Blocks[bi].Start == pc {
			marker = "▸"
		}
		fmt.Fprintf(w, "%s %5d  %s\n", marker, pc, in)
	}
}

func decodeStr(word uint32) string {
	return isa.Decode(word).String()
}
