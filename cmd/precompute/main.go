// Command precompute warms the fault-injection campaign cache for every
// configuration the experiment harness needs. Campaigns are expensive
// (minutes for the out-of-order core) and deterministic, so they are
// computed once and cached under testdata/cache (see inject.CacheDir).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/experiments"
	"clear/internal/inject"
)

func main() {
	only := flag.String("only", "", "restrict to a phase: base, ino, ooo, abft")
	ckptInterval := flag.Int("ckpt-interval", inject.CheckpointInterval,
		"cycles between reference checkpoints (0 replays every injection from reset)")
	flag.Parse()
	inject.CheckpointInterval = *ckptInterval
	log.SetFlags(log.Ltime)
	start := time.Now()

	inoE := core.NewEngine(inject.InO)
	oooE := core.NewEngine(inject.OoO)

	phase := func(name string, f func() error) {
		if *only != "" && *only != name {
			return
		}
		t0 := time.Now()
		log.Printf("phase %s...", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "precompute %s: %v\n", name, err)
			os.Exit(1)
		}
		log.Printf("phase %s done in %s", name, time.Since(t0).Round(time.Second))
	}

	warm := func(e *core.Engine, benches []*bench.Benchmark, variants []core.Variant) error {
		for _, v := range variants {
			for _, b := range benches {
				t0 := time.Now()
				if _, err := e.Campaign(b, v); err != nil {
					return fmt.Errorf("%s/%s/%s: %w", e.Kind, b.Name, v.Tag(), err)
				}
				log.Printf("  %s %s %s (%s)", e.Kind, b.Name, v.Tag(), time.Since(t0).Round(time.Millisecond))
			}
		}
		return nil
	}

	phase("base", func() error {
		if err := warm(inoE, bench.All(), []core.Variant{{}}); err != nil {
			return err
		}
		return warm(oooE, bench.ForOoO(), []core.Variant{{}})
	})

	phase("ino", func() error {
		// full-suite technique campaigns
		if err := warm(inoE, bench.All(), experiments.InOFullVariants()); err != nil {
			return err
		}
		// subset campaigns (Tables 10/11/13/14/16)
		return warm(inoE, experiments.SubsetBenchmarks(), experiments.InOSubsetVariants())
	})

	phase("ooo", func() error {
		return warm(oooE, bench.ForOoO(), experiments.OoOVariants())
	})

	phase("abft", func() error {
		if err := warm(inoE, experiments.ABFTCorrBenchmarks(), experiments.ABFTCorrVariants()); err != nil {
			return err
		}
		if err := warm(inoE, experiments.ABFTDetBenchmarks(), experiments.ABFTDetVariants()); err != nil {
			return err
		}
		return warm(oooE, experiments.ABFTCorrBenchmarks(), experiments.ABFTCorrVariants())
	})

	log.Printf("all phases complete in %s; cache at %s",
		time.Since(start).Round(time.Second), inject.CacheDir())
}
