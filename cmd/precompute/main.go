// Command precompute warms the fault-injection campaign cache for every
// configuration the experiment harness needs. Campaigns are expensive
// (minutes for the out-of-order core) and deterministic, so they are
// computed once and cached under testdata/cache (see inject.CacheDir).
//
// The warm loop is fault-tolerant: each campaign runs under panic
// isolation with transient-failure retries (-retries), a failing
// configuration is recorded and skipped instead of aborting the whole
// warm-up, and SIGINT/SIGTERM stops between campaigns with exit status 3 —
// everything cached so far is preserved, so rerunning resumes naturally.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/experiments"
	"clear/internal/inject"
	"clear/internal/obs"
	"clear/internal/resilient"
	"clear/internal/tcode"
)

func main() {
	only := flag.String("only", "", "restrict to a phase: base, ino, ooo, abft")
	faultModel := flag.String("fault-model", inject.DefaultModel,
		"fault model to warm the cache under: "+strings.Join(inject.ModelNames(), ", "))
	ckptInterval := flag.Int("ckpt-interval", inject.CheckpointInterval,
		"cycles between reference checkpoints (0 replays every injection from reset)")
	retries := flag.Int("retries", 2, "retry budget for transiently failing campaigns")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics, /debug/vars and /debug/pprof on this address while warming (e.g. 127.0.0.1:9090; empty = off)")
	traceOut := flag.String("trace-out", "",
		"write a JSONL campaign trace to this file (empty = off)")
	compiled := flag.Bool("compiled", true,
		"execute programs as pre-translated threaded code (false = decode-switch interpreter; bit-identical escape hatch)")
	packed := flag.Bool("packed", true,
		"batch campaign injections into 64-way gangs with shared prefix replay (false = scalar loop; bit-identical escape hatch)")
	flag.Parse()
	tcode.SetEnabled(*compiled)
	inject.Packed = *packed
	inject.CheckpointInterval = *ckptInterval
	log.SetFlags(log.Ltime)
	start := time.Now()

	ctx, stop := resilient.WithSignals(context.Background())
	defer stop()
	policy := resilient.Policy{MaxAttempts: 1 + *retries, BaseDelay: time.Second}

	if inject.LookupModel(*faultModel) == nil {
		log.Fatalf("unknown -fault-model %q (accepted: %s)", *faultModel, strings.Join(inject.ModelNames(), ", "))
	}
	inoE := core.NewEngine(inject.InO)
	oooE := core.NewEngine(inject.OoO)
	inoE.FaultModel = *faultModel
	oooE.FaultModel = *faultModel

	// Both engines instrument into one registry: the per-core name
	// prefixes (core.ino.*, core.ooo.*) keep them apart.
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		inoE.Instrument(reg)
		oooE.Instrument(reg)
		bound, shutdown, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("-metrics-addr: %v", err)
		}
		defer shutdown()
		log.Printf("metrics: http://%s/metrics", bound)
	}
	if *traceOut != "" {
		tr, err := obs.OpenTrace(*traceOut)
		if err != nil {
			log.Fatalf("-trace-out: %v", err)
		}
		defer func() {
			if err := tr.Close(); err != nil {
				log.Printf("trace: %v", err)
			}
		}()
		inoE.Inj.Tracer = tr
		oooE.Inj.Tracer = tr
	}

	var failures []string

	phase := func(name string, f func() error) {
		if *only != "" && *only != name {
			return
		}
		if ctx.Err() != nil {
			return
		}
		t0 := time.Now()
		log.Printf("phase %s...", name)
		if err := f(); err != nil {
			if ctx.Err() != nil {
				return
			}
			fmt.Fprintf(os.Stderr, "precompute %s: %v\n", name, err)
			os.Exit(1)
		}
		log.Printf("phase %s done in %s", name, time.Since(t0).Round(time.Second))
	}

	warm := func(e *core.Engine, benches []*bench.Benchmark, variants []core.Variant) error {
		for _, v := range variants {
			for _, b := range benches {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				t0 := time.Now()
				_, attempts, err := resilient.Do(ctx, policy, func() (*inject.Result, error) {
					return e.Campaign(b, v)
				})
				if err != nil {
					if ctx.Err() != nil {
						return ctx.Err()
					}
					// One bad configuration must not starve the rest of the
					// cache: classify, record, keep warming.
					desc := fmt.Sprintf("%s/%s/%s [%s, %d attempt(s)]: %v",
						e.Kind, b.Name, v.Tag(), resilient.KindOf(err), attempts, err)
					failures = append(failures, desc)
					log.Printf("  FAILED %s", desc)
					if st := resilient.StackOf(err); st != "" {
						fmt.Fprintln(os.Stderr, st)
					}
					continue
				}
				log.Printf("  %s %s %s (%s)", e.Kind, b.Name, v.Tag(), time.Since(t0).Round(time.Millisecond))
			}
		}
		return nil
	}

	phase("base", func() error {
		if err := warm(inoE, bench.All(), []core.Variant{{}}); err != nil {
			return err
		}
		return warm(oooE, bench.ForOoO(), []core.Variant{{}})
	})

	phase("ino", func() error {
		// full-suite technique campaigns
		if err := warm(inoE, bench.All(), experiments.InOFullVariants()); err != nil {
			return err
		}
		// subset campaigns (Tables 10/11/13/14/16)
		return warm(inoE, experiments.SubsetBenchmarks(), experiments.InOSubsetVariants())
	})

	phase("ooo", func() error {
		return warm(oooE, bench.ForOoO(), experiments.OoOVariants())
	})

	phase("abft", func() error {
		if err := warm(inoE, experiments.ABFTCorrBenchmarks(), experiments.ABFTCorrVariants()); err != nil {
			return err
		}
		if err := warm(inoE, experiments.ABFTDetBenchmarks(), experiments.ABFTDetVariants()); err != nil {
			return err
		}
		return warm(oooE, experiments.ABFTCorrBenchmarks(), experiments.ABFTCorrVariants())
	})

	if ctx.Err() != nil {
		log.Printf("interrupted after %s; campaigns cached so far are preserved at %s — rerun to resume",
			time.Since(start).Round(time.Second), inject.CacheDir())
		os.Exit(resilient.ExitResumable)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "precompute: %d configuration(s) failed:\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	log.Printf("all phases complete in %s; cache at %s",
		time.Since(start).Round(time.Second), inject.CacheDir())
}
