// Command tables regenerates the paper's evaluation tables and figures.
//
//	tables -exp table19        # one experiment
//	tables -exp all            # everything (warm the cache first: precompute)
//	tables -list               # available experiment ids
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"clear/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (table1..table27, fig1d, fig8..fig10) or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	quick := flag.Bool("quick", false, "reduced sampling (1 injection per flip-flop; for smoke runs)")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s  %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	ctx := experiments.NewCtx()
	if *quick {
		ctx.InO.SamplesBase, ctx.InO.SamplesTech = 1, 1
		ctx.OoO.SamplesBase, ctx.OoO.SamplesTech = 1, 1
	}

	run := func(e experiments.Experiment) {
		t0 := time.Now()
		out, err := e.Run(ctx)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Println(out)
		fmt.Printf("(%s generated in %s)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, ok := experiments.Get(*exp)
	if !ok {
		log.Fatalf("unknown experiment %q (use -list)", *exp)
	}
	run(e)
}
