// Command techlint checks that every registered resilience technique is
// wired through all user-facing surfaces of the framework — run in CI so a
// technique added to the registry (or a registry refactor) cannot silently
// drop out of a table, the enumeration, or the public API.
//
// Checks:
//
//  1. the default registry validates (layer declared, at least one
//     applicable core, finite cost contributions, recovery coverage);
//  2. every non-recovery technique has at least one row in the standalone
//     cost table (Table 3, internal/experiments);
//  3. every technique appears in at least one enumerated combination on
//     each core it applies to, and combination names mention it;
//  4. the public clear package façade exposes the same registry: identical
//     technique list, working lookups, and ComboFor round-trips.
//
// Exit status 0 when all checks pass; 1 with one line per problem
// otherwise.
package main

import (
	"fmt"
	"os"
	"strings"

	"clear"
	"clear/internal/core"
	"clear/internal/experiments"
	"clear/internal/inject"
	"clear/internal/recovery"
	"clear/internal/technique"
)

func main() {
	var problems []string
	fail := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	reg := technique.Default()
	if err := reg.Validate(); err != nil {
		fail("registry validation: %v", err)
	}

	// 2. Table 3 coverage: the standalone-technique table derives its rows
	// from the registry; make sure the derivation dropped nobody.
	rows := experiments.TechniqueRowNames()
	for _, t := range reg.Techniques() {
		if !rows[t.Name()] {
			fail("technique %q has no row in the standalone-technique table (Table 3)", t.Name())
		}
	}

	// 3. Enumeration coverage per applicable core, and name round-trips.
	for _, coreName := range technique.CoreKinds {
		kind := inject.InO
		if coreName == "OoO" {
			kind = inject.OoO
		}
		seen := map[string]bool{}
		for _, c := range core.Enumerate(kind) {
			for _, t := range c.ActiveTechniques() {
				seen[t.Name()] = true
			}
		}
		for _, t := range reg.Techniques() {
			if t.AppliesTo(coreName) && !seen[t.Name()] {
				fail("technique %q applies to %s but appears in no enumerated combination there",
					t.Name(), coreName)
			}
		}
	}
	for _, t := range reg.Techniques() {
		c, err := core.ComboFor([]string{t.Name()}, recovery.None)
		if err != nil {
			fail("ComboFor(%q): %v", t.Name(), err)
			continue
		}
		if !strings.Contains(c.Name(), t.Name()) {
			fail("combination built from %q is named %q — name does not mention the technique",
				t.Name(), c.Name())
		}
	}

	// 4. Public façade coverage: the clear package must expose the same
	// registry contents (a drifted re-export would hide techniques from
	// external users even though the internal engine knows them).
	pub := clear.Techniques()
	if len(pub) != len(reg.Techniques()) {
		fail("clear.Techniques() exposes %d techniques, registry has %d",
			len(pub), len(reg.Techniques()))
	}
	for i, t := range reg.Techniques() {
		if i < len(pub) && pub[i].Name() != t.Name() {
			fail("clear.Techniques()[%d] = %q, registry says %q", i, pub[i].Name(), t.Name())
		}
		if _, err := clear.LookupTechnique(t.Name()); err != nil {
			fail("clear.LookupTechnique(%q): %v", t.Name(), err)
		}
	}
	for _, kind := range []clear.CoreKind{clear.InO, clear.OoO} {
		if pn, in := len(clear.Enumerate(kind)), len(core.Enumerate(kind)); pn != in {
			fail("clear.Enumerate(%v) yields %d combos, internal enumeration %d", kind, pn, in)
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "techlint:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("techlint: %d techniques, %d recoveries — all surfaces covered\n",
		len(reg.Techniques()), len(reg.Recoveries()))
}
