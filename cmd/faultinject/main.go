// Command faultinject runs a flip-flop soft-error injection campaign for
// one (core, benchmark, technique) configuration and prints the outcome
// distribution and the most vulnerable flip-flop structures.
//
//	faultinject -core InO -bench gzip -samples 4
//	faultinject -core OoO -bench mcf -dfc
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/obs"
	"clear/internal/resilient"
	"clear/internal/stats"
	"clear/internal/tcode"
)

func main() {
	coreName := flag.String("core", "InO", "core design: InO or OoO")
	benchName := flag.String("bench", "gzip", "benchmark name")
	samples := flag.Int("samples", 4, "injections per flip-flop")
	dfc := flag.Bool("dfc", false, "attach the DFC checker")
	faultModel := flag.String("fault-model", inject.DefaultModel,
		"fault model for the campaign: "+strings.Join(inject.ModelNames(), ", "))
	monitor := flag.Bool("monitor", false, "attach the monitor core")
	top := flag.Int("top", 10, "show the N most vulnerable structures")
	ckptInterval := flag.Int("ckpt-interval", inject.CheckpointInterval,
		"cycles between reference checkpoints (0 replays every injection from reset)")
	retries := flag.Int("retries", 2, "retry budget for transient campaign failures")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics, /debug/vars and /debug/pprof on this address during the campaign (e.g. 127.0.0.1:9090; empty = off)")
	traceOut := flag.String("trace-out", "",
		"write a JSONL campaign trace to this file (empty = off)")
	compiled := flag.Bool("compiled", true,
		"execute programs as pre-translated threaded code (false = decode-switch interpreter; bit-identical escape hatch)")
	packed := flag.Bool("packed", true,
		"batch campaign injections into 64-way gangs with shared prefix replay (false = scalar loop; bit-identical escape hatch)")
	flag.Parse()
	tcode.SetEnabled(*compiled)
	inject.Packed = *packed

	var kind inject.CoreKind
	switch strings.ToLower(*coreName) {
	case "ino":
		kind = inject.InO
	case "ooo":
		kind = inject.OoO
	default:
		log.Fatalf("unknown -core %q (accepted: InO, OoO)", *coreName)
	}
	inject.CheckpointInterval = *ckptInterval
	b := bench.ByName(*benchName)
	if b == nil {
		log.Fatalf("unknown benchmark %q (have: %v)", *benchName, bench.Names())
	}
	e := core.NewEngine(kind)
	if inject.LookupModel(*faultModel) == nil {
		log.Fatalf("unknown -fault-model %q (accepted: %s)", *faultModel, strings.Join(inject.ModelNames(), ", "))
	}
	e.FaultModel = *faultModel
	e.SamplesBase = *samples
	e.SamplesTech = *samples
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		e.Instrument(reg)
		bound, shutdown, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("-metrics-addr: %v", err)
		}
		defer shutdown()
		log.Printf("metrics: http://%s/metrics", bound)
	}
	if *traceOut != "" {
		tr, err := obs.OpenTrace(*traceOut)
		if err != nil {
			log.Fatalf("-trace-out: %v", err)
		}
		defer func() {
			if err := tr.Close(); err != nil {
				log.Printf("trace: %v", err)
			}
		}()
		e.Inj.Tracer = tr
	}
	v := core.Variant{DFC: *dfc, Monitor: *monitor}

	// The campaign runs under panic isolation and transient-failure retry:
	// a simulator crash prints a classified error with its stack instead of
	// an unhandled panic, and a cache-IO hiccup gets another chance.
	res, attempts, err := resilient.Do(context.Background(),
		resilient.Policy{MaxAttempts: 1 + *retries, BaseDelay: time.Second},
		func() (*inject.Result, error) { return e.Campaign(b, v) })
	if err != nil {
		log.Printf("campaign failed [%s, %d attempt(s)]: %v", resilient.KindOf(err), attempts, err)
		if st := resilient.StackOf(err); st != "" {
			fmt.Fprintln(os.Stderr, st)
		}
		os.Exit(1)
	}

	tot := res.Totals
	fmt.Printf("%s / %s / %s: %d injections over %d flip-flops, nominal %d cycles\n",
		kind, b.Name, inject.ModelTag(e.FaultModel, v.Tag()), tot.N, len(res.PerFF), res.NomCycles)
	show := func(name string, n int) {
		if tot.N == 0 {
			fmt.Printf("  %-9s %6d\n", name, n)
			return
		}
		p := float64(n) / float64(tot.N)
		moe := stats.MarginOfError(p, tot.N, 1.96)
		fmt.Printf("  %-9s %6d  (%.2f%% ± %.2f%%)\n", name, n, 100*p, 100*moe)
	}
	show("Vanished", tot.Vanished)
	show("OMM", tot.OMM)
	show("UT", tot.UT)
	show("Hang", tot.Hang)
	show("ED", tot.ED)
	fmt.Printf("  SDC-causing: %d, DUE-causing: %d\n", tot.SDC(), tot.DUE())
	if res.DetN > 0 {
		fmt.Printf("  mean detection latency: %.0f cycles over %d detections\n",
			float64(res.DetLatSum)/float64(res.DetN), res.DetN)
	}

	// most vulnerable structures
	type structStats struct {
		name        string
		n, sdc, due int
	}
	byStruct := map[string]*structStats{}
	for bit, st := range res.PerFF {
		name, _ := e.Space.NameOf(bit)
		s := byStruct[name]
		if s == nil {
			s = &structStats{name: name}
			byStruct[name] = s
		}
		s.n += int(st.N)
		s.sdc += int(st.OMM)
		s.due += int(st.UT) + int(st.Hang) + int(st.ED)
	}
	var list []*structStats
	for _, s := range byStruct {
		list = append(list, s)
	}
	sort.Slice(list, func(i, j int) bool {
		return list[i].sdc+list[i].due > list[j].sdc+list[j].due
	})
	fmt.Printf("\nmost vulnerable structures:\n")
	for i, s := range list {
		if i >= *top {
			break
		}
		if s.n == 0 {
			fmt.Printf("  %-28s (no samples)\n", s.name)
			continue
		}
		fmt.Printf("  %-28s SDC %5.1f%%  DUE %5.1f%%\n", s.name,
			100*float64(s.sdc)/float64(s.n), 100*float64(s.due)/float64(s.n))
	}
}
