// Command faultinject runs a flip-flop soft-error injection campaign for
// one (core, benchmark, technique) configuration and prints the outcome
// distribution and the most vulnerable flip-flop structures.
//
//	faultinject -core InO -bench gzip -samples 4
//	faultinject -core OoO -bench mcf -dfc
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"clear/internal/bench"
	"clear/internal/core"
	"clear/internal/inject"
	"clear/internal/stats"
)

func main() {
	coreName := flag.String("core", "InO", "core design: InO or OoO")
	benchName := flag.String("bench", "gzip", "benchmark name")
	samples := flag.Int("samples", 4, "injections per flip-flop")
	dfc := flag.Bool("dfc", false, "attach the DFC checker")
	monitor := flag.Bool("monitor", false, "attach the monitor core")
	top := flag.Int("top", 10, "show the N most vulnerable structures")
	ckptInterval := flag.Int("ckpt-interval", inject.CheckpointInterval,
		"cycles between reference checkpoints (0 replays every injection from reset)")
	flag.Parse()

	var kind inject.CoreKind
	switch strings.ToLower(*coreName) {
	case "ino":
		kind = inject.InO
	case "ooo":
		kind = inject.OoO
	default:
		log.Fatalf("unknown -core %q (accepted: InO, OoO)", *coreName)
	}
	inject.CheckpointInterval = *ckptInterval
	b := bench.ByName(*benchName)
	if b == nil {
		log.Fatalf("unknown benchmark %q (have: %v)", *benchName, bench.Names())
	}
	e := core.NewEngine(kind)
	e.SamplesBase = *samples
	e.SamplesTech = *samples
	v := core.Variant{DFC: *dfc, Monitor: *monitor}

	res, err := e.Campaign(b, v)
	if err != nil {
		log.Fatal(err)
	}

	tot := res.Totals
	fmt.Printf("%s / %s / %s: %d injections over %d flip-flops, nominal %d cycles\n",
		kind, b.Name, v.Tag(), tot.N, len(res.PerFF), res.NomCycles)
	show := func(name string, n int) {
		if tot.N == 0 {
			fmt.Printf("  %-9s %6d\n", name, n)
			return
		}
		p := float64(n) / float64(tot.N)
		moe := stats.MarginOfError(p, tot.N, 1.96)
		fmt.Printf("  %-9s %6d  (%.2f%% ± %.2f%%)\n", name, n, 100*p, 100*moe)
	}
	show("Vanished", tot.Vanished)
	show("OMM", tot.OMM)
	show("UT", tot.UT)
	show("Hang", tot.Hang)
	show("ED", tot.ED)
	fmt.Printf("  SDC-causing: %d, DUE-causing: %d\n", tot.SDC(), tot.DUE())
	if res.DetN > 0 {
		fmt.Printf("  mean detection latency: %.0f cycles over %d detections\n",
			float64(res.DetLatSum)/float64(res.DetN), res.DetN)
	}

	// most vulnerable structures
	type structStats struct {
		name        string
		n, sdc, due int
	}
	byStruct := map[string]*structStats{}
	for bit, st := range res.PerFF {
		name, _ := e.Space.NameOf(bit)
		s := byStruct[name]
		if s == nil {
			s = &structStats{name: name}
			byStruct[name] = s
		}
		s.n += int(st.N)
		s.sdc += int(st.OMM)
		s.due += int(st.UT) + int(st.Hang) + int(st.ED)
	}
	var list []*structStats
	for _, s := range byStruct {
		list = append(list, s)
	}
	sort.Slice(list, func(i, j int) bool {
		return list[i].sdc+list[i].due > list[j].sdc+list[j].due
	})
	fmt.Printf("\nmost vulnerable structures:\n")
	for i, s := range list {
		if i >= *top {
			break
		}
		if s.n == 0 {
			fmt.Printf("  %-28s (no samples)\n", s.name)
			continue
		}
		fmt.Printf("  %-28s SDC %5.1f%%  DUE %5.1f%%\n", s.name,
			100*float64(s.sdc)/float64(s.n), 100*float64(s.due)/float64(s.n))
	}
}
