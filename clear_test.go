package clear

import (
	"math"
	"testing"
)

func TestPublicAPISurface(t *testing.T) {
	if len(Benchmarks()) != 18 {
		t.Fatalf("Benchmarks() = %d", len(Benchmarks()))
	}
	if BenchmarkByName("gzip") == nil || BenchmarkByName("none") != nil {
		t.Fatal("BenchmarkByName broken")
	}
	if got := len(Enumerate(InO)) + len(Enumerate(OoO)); got != 586 {
		t.Fatalf("Enumerate total %d, want 586", got)
	}
	if len(Experiments()) != 33 {
		t.Fatalf("Experiments() = %d, want 33", len(Experiments()))
	}
	if _, err := RunExperiment("no-such-id"); err == nil {
		t.Fatal("RunExperiment should reject unknown ids")
	}
}

func TestPublicInjection(t *testing.T) {
	b := BenchmarkByName("inner_product")
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCore(InO, p)
	res := c.Run(1_000_000)
	if len(res.Output) == 0 {
		t.Fatal("no output")
	}
	nom := res.Steps
	// injecting into a vanish-prone status register mostly vanishes;
	// injecting into the operand latch does not always
	seen := map[InjectionOutcome]bool{}
	for cycle := 10; cycle < nom; cycle += nom / 20 {
		for bit := 0; bit < c.SpaceOf().NumBits(); bit += 97 {
			seen[InjectOne(InO, p, bit, cycle, nom)] = true
		}
		if len(seen) >= 3 {
			break
		}
	}
	if !seen[Vanished] {
		t.Fatal("no vanished outcomes at all")
	}
	if len(seen) < 2 {
		t.Fatal("injection produced only one outcome class")
	}
}

func TestPublicComboEval(t *testing.T) {
	t.Setenv("CLEAR_CACHE_DIR", t.TempDir())
	eng := NewEngine(InO)
	eng.SamplesBase, eng.SamplesTech = 1, 1
	combo := Combo{DICE: true, Parity: true, Recovery: RecFlush}
	out, err := eng.EvalCombo(BenchmarkByName("inner_product"), combo, SDC, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !out.TargetMet || out.Cost.Energy() <= 0 {
		t.Fatalf("outcome %+v", out)
	}
	if math.IsNaN(out.SDCImp) {
		t.Fatal("NaN improvement")
	}
}

func TestRunExperimentCampaignFree(t *testing.T) {
	out, err := RunExperiment("table4")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) < 100 {
		t.Fatalf("table4 output too small: %q", out)
	}
}
