package clear_test

import (
	"fmt"

	"clear"
)

// Enumerate reproduces the paper's Table 18 combination counting.
func ExampleEnumerate() {
	fmt.Println(len(clear.Enumerate(clear.InO)) + len(clear.Enumerate(clear.OoO)))
	// Output: 586
}

// Soft errors are single bit flips in a core's flip-flop space; most
// vanish, some corrupt outputs or crash the program.
func ExampleInjectOne() {
	b := clear.BenchmarkByName("inner_product")
	p, _ := b.Program()
	c := clear.NewCore(clear.InO, p)
	nominal := c.Run(1_000_000)

	// a flip in a dead status register always vanishes
	statusBit := c.SpaceOf().BitsOf("w.s.tba")[0]
	fmt.Println(clear.InjectOne(clear.InO, p, statusBit, nominal.Steps/2, nominal.Steps))
	// Output: Vanished
}

// Combinations are named by their techniques and recovery mechanism.
func ExampleCombo() {
	c := clear.Combo{DICE: true, Parity: true, Recovery: clear.RecFlush}
	fmt.Println(c.Name())
	// Output: LEAP-DICE+Parity (+flush)
}
