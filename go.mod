module clear

go 1.22
